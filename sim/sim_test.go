package sim_test

import (
	"strings"
	"testing"

	"sfcmdt/sim"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	// Build a program through the public Builder.
	b := sim.NewBuilder("api")
	data := b.Word64(3, 5, 7)
	b.La(1, data)
	b.Ld(2, 0, 1)
	b.Ld(3, 8, 1)
	b.Mul(4, 2, 3)
	b.Sd(4, 16, 1)
	b.Ld(5, 16, 1)
	b.Halt()
	img := b.MustBuild()

	// Golden model.
	tr, err := sim.GoldenTrace(img, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Halted {
		t.Fatal("program should halt")
	}

	// Pipeline on both subsystems.
	for _, v := range []sim.Variant{sim.MDTSFCEnf, sim.LSQ48x32} {
		st, err := sim.Run(sim.Baseline(v, 100), img)
		if err != nil {
			t.Fatalf("%s: %v", v.Label, err)
		}
		if st.Retired != uint64(tr.Len()) {
			t.Errorf("%s retired %d, trace has %d", v.Label, st.Retired, tr.Len())
		}
	}
}

func TestPublicAssembler(t *testing.T) {
	img, err := sim.Assemble("t", "li r1, 7\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sim.Disassemble(img), "halt") {
		t.Error("disassembly missing halt")
	}
	if _, err := sim.Assemble("t", "bogus r1"); err == nil {
		t.Error("assembler accepted garbage")
	}
}

func TestWorkloadRegistryExposed(t *testing.T) {
	if len(sim.Workloads()) != 20 {
		t.Errorf("got %d workloads", len(sim.Workloads()))
	}
	if _, ok := sim.Workload("mcf"); !ok {
		t.Error("mcf missing")
	}
	if _, ok := sim.Workload("nope"); ok {
		t.Error("phantom workload")
	}
}

func TestExperimentViaPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	r := sim.NewRunner(2000)
	tbl, err := sim.Assoc16(r)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tbl.Fprint(&sb)
	if !strings.Contains(sb.String(), "bzip2") {
		t.Error("table missing bzip2 row")
	}
}
