// Package sfcmdt_test is the benchmark harness: one benchmark per paper
// table/figure (each regenerates the corresponding experiment at a reduced
// instruction budget; use cmd/sfcbench for full-size runs), plus
// micro-benchmarks for the per-access cost of the address-indexed SFC/MDT
// versus the LSQ's associative searches — the stand-in for the paper's
// latency/power argument.
//
// Run with:
//
//	go test -bench=. -benchmem
package sfcmdt_test

import (
	"testing"

	"sfcmdt/internal/arch"
	"sfcmdt/internal/core"
	"sfcmdt/internal/harness"
	"sfcmdt/internal/pipeline"
	"sfcmdt/internal/sched"
	"sfcmdt/internal/seqnum"
	"sfcmdt/internal/workload"
	"sfcmdt/sim"
)

// benchInsts keeps the macro-benchmarks fast; sfcbench uses 200k+.
const benchInsts = 10_000

func benchTable(b *testing.B, run func(r *sim.Runner) (*sim.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchInsts)
		if _, err := run(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4Configs measures configuration construction (table E1).
func BenchmarkFigure4Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.Figure4()
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure5 regenerates the baseline-processor comparison (E2).
func BenchmarkFigure5(b *testing.B) { benchTable(b, sim.Figure5) }

// BenchmarkFigure6 regenerates the aggressive-processor comparison (E3).
func BenchmarkFigure6(b *testing.B) { benchTable(b, sim.Figure6) }

// BenchmarkViolations regenerates the anti+output violation table (E4).
func BenchmarkViolations(b *testing.B) { benchTable(b, sim.Violations) }

// BenchmarkEnfVsNotEnf regenerates the aggressive ENF comparison (E5).
func BenchmarkEnfVsNotEnf(b *testing.B) { benchTable(b, sim.EnfVsNotEnf) }

// BenchmarkConflicts regenerates the structural-conflict table (E6).
func BenchmarkConflicts(b *testing.B) { benchTable(b, sim.Conflicts) }

// BenchmarkAssoc16 regenerates the associativity experiment (E7).
func BenchmarkAssoc16(b *testing.B) { benchTable(b, sim.Assoc16) }

// BenchmarkCorruption regenerates the corruption-rate table (E8).
func BenchmarkCorruption(b *testing.B) { benchTable(b, sim.Corruption) }

// BenchmarkGranularity regenerates the MDT granularity sweep (E9).
func BenchmarkGranularity(b *testing.B) {
	benchTable(b, func(r *sim.Runner) (*sim.Table, error) {
		return sim.Granularity(r, []string{"gzip", "mcf"})
	})
}

// BenchmarkRecovery regenerates the recovery-policy ablation (E10).
func BenchmarkRecovery(b *testing.B) {
	benchTable(b, func(r *sim.Runner) (*sim.Table, error) {
		return sim.Recovery(r, []string{"vpr_route", "mesa"})
	})
}

// BenchmarkTaggedVsUntagged regenerates the tagging ablation (E11).
func BenchmarkTaggedVsUntagged(b *testing.B) {
	benchTable(b, func(r *sim.Runner) (*sim.Table, error) {
		return sim.TaggedVsUntagged(r, []string{"gzip", "twolf"})
	})
}

// ---------------------------------------------------------------------------
// Whole-pipeline throughput (simulated instructions per wall-clock second).

func benchPipeline(b *testing.B, cfg sim.Config, name string) {
	b.Helper()
	w, ok := sim.Workload(name)
	if !ok {
		b.Fatal("unknown workload")
	}
	img := w.Build()
	tr, err := sim.GoldenTrace(img, cfg.MaxInsts)
	if err != nil {
		b.Fatal(err)
	}
	_ = tr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg, img); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.MaxInsts), "insts/op")
}

func BenchmarkPipelineBaselineMDTSFC(b *testing.B) {
	benchPipeline(b, sim.Baseline(sim.MDTSFCEnf, benchInsts), "gcc")
}

func BenchmarkPipelineBaselineLSQ(b *testing.B) {
	benchPipeline(b, sim.Baseline(sim.LSQ48x32, benchInsts), "gcc")
}

func BenchmarkPipelineAggressiveMDTSFC(b *testing.B) {
	benchPipeline(b, sim.Aggressive(sim.MDTSFCTotal, benchInsts), "gcc")
}

func BenchmarkPipelineAggressiveLSQ(b *testing.B) {
	benchPipeline(b, sim.Aggressive(sim.LSQ120x80, benchInsts), "gcc")
}

// BenchmarkGoldenModel measures the functional simulator alone.
func BenchmarkGoldenModel(b *testing.B) {
	w, _ := sim.Workload("gcc")
	img := w.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.GoldenTrace(img, benchInsts); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Structure micro-benchmarks: the simulation-level analogue of the paper's
// circuit argument. An SFC/MDT access inspects one set (O(associativity));
// an LSQ search walks the in-flight queue (O(occupancy)).

func BenchmarkSFCStoreLoadPair(b *testing.B) {
	sfc := core.NewSFC(core.SFCConfig{Sets: 512, Ways: 2})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addr := uint64(i%4096) * 8
		sfc.StoreWrite(seq(i), addr, 8, uint64(i))
		sfc.LoadRead(addr, 8)
		sfc.RetireStore(seq(i), addr)
	}
}

func BenchmarkMDTAccessPair(b *testing.B) {
	mdt := core.NewMDT(core.MDTConfig{Sets: 8192, Ways: 2, GranBytes: 8, Tagged: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addr := uint64(i%8192) * 8
		mdt.AccessStore(seq(i), 0x100, addr, 8)
		mdt.AccessLoad(seq(i)+1, 0x104, addr, 8)
		mdt.RetireStore(seq(i), addr, 8)
		mdt.RetireLoad(seq(i)+1, addr, 8)
	}
}

// BenchmarkLSQSearch measures the associative store-queue search with the
// paper's aggressive occupancy (80 in-flight stores): every load walks the
// whole queue, which is what motivates the address-indexed replacement.
func BenchmarkLSQSearch(b *testing.B) {
	lsq := core.NewLSQ(core.LSQConfig{LoadEntries: 120, StoreEntries: 80})
	memRead := func(addr uint64, size int) uint64 { return 0 }
	var s uint64
	for i := 0; i < 80; i++ {
		s++
		lsq.DispatchStore(seq(int(s)), 0)
		lsq.ExecuteStore(seq(int(s)), uint64(i)*8, 8, uint64(i), memRead)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s++
		ls := seq(int(s))
		lsq.DispatchLoad(ls, 0)
		lsq.ExecuteLoad(ls, uint64(i%80)*8, 8, memRead)
		lsq.SquashFrom(ls) // keep the load queue from growing
	}
}

// ---------------------------------------------------------------------------
// Cycle-loop micro-benchmarks: the event wheel and entry pool that replaced
// the seed's map-of-slices scheduler and per-dispatch allocations. The paired
// *Map/*Unpooled benchmarks keep the replaced implementations measurable so
// the win stays visible in bench output (and in BENCH_PR1.json, which
// cmd/sfcbench regenerates from equivalent loops).

// BenchmarkEventWheel models the pipeline's real event mix — a few
// completions scheduled per cycle at latencies spread across the wheel
// horizon, drained every cycle.
func BenchmarkEventWheel(b *testing.B) {
	w := sched.NewWheel[int](64)
	var now uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 4; j++ {
			w.Schedule(now, now+uint64(1+(i+j)%48), j)
		}
		now++
		w.Due(now)
	}
}

// BenchmarkEventMap is the seed's scheduler: a map from cycle to an
// allocated slice of due events.
func BenchmarkEventMap(b *testing.B) {
	events := make(map[uint64][]int)
	var now uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 4; j++ {
			at := now + uint64(1+(i+j)%48)
			events[at] = append(events[at], j)
		}
		now++
		if _, ok := events[now]; ok {
			delete(events, now)
		}
	}
}

type benchROBEntry struct {
	seq, pc, addr, val uint64
	ratSnap            []uint64
	flags              [4]bool
}

// BenchmarkEntryPooled measures dispatch-retire entry churn through a free
// list that preserves each entry's RAT-snapshot backing array.
func BenchmarkEntryPooled(b *testing.B) {
	var pool []*benchROBEntry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e *benchROBEntry
		if n := len(pool); n > 0 {
			e = pool[n-1]
			pool = pool[:n-1]
			snap := e.ratSnap
			*e = benchROBEntry{ratSnap: snap}
		} else {
			e = &benchROBEntry{ratSnap: make([]uint64, 32)}
		}
		e.seq = uint64(i)
		pool = append(pool, e)
	}
}

// BenchmarkEntryUnpooled is the seed's behaviour: a fresh entry and snapshot
// slice per dispatched instruction.
func BenchmarkEntryUnpooled(b *testing.B) {
	sink := make([]*benchROBEntry, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := &benchROBEntry{ratSnap: make([]uint64, 32)}
		e.seq = uint64(i)
		sink[0] = e
	}
}

// BenchmarkPipelineSteadyCycle measures one warm pipeline cycle — the
// number the tentpole optimises. Expect ~0 allocs/op.
func BenchmarkPipelineSteadyCycle(b *testing.B) {
	const insts = 400_000
	build := func() *pipeline.Pipeline {
		w, ok := workload.Get("swim")
		if !ok {
			b.Fatal("workload swim not registered")
		}
		img := w.Build()
		cfg := harness.BaselineConfig(harness.MDTSFCEnf, insts)
		tr, err := arch.RunTrace(img, insts)
		if err != nil {
			b.Fatal(err)
		}
		p, err := pipeline.NewWithTrace(cfg, img, tr)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 20_000; i++ {
			p.Step()
		}
		return p
	}
	p := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.Step() {
			b.StopTimer()
			p = build()
			b.StartTimer()
		}
	}
}

// BenchmarkWorkloadGenerators measures program construction.
func BenchmarkWorkloadGenerators(b *testing.B) {
	ws := workload.All()
	for i := 0; i < b.N; i++ {
		ws[i%len(ws)].Build()
	}
}

// BenchmarkRunnerFigure5Parallel measures the harness's parallel fan-out.
func BenchmarkRunnerFigure5Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(2000)
		if _, err := harness.Figure5(r); err != nil {
			b.Fatal(err)
		}
	}
}

func seq(i int) seqnum.Seq { return seqnum.Seq(i + 1) }
