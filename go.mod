module sfcmdt

go 1.22
